package cop

import (
	"sync"
	"testing"
)

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 100; i++ {
		m.Put(i)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := m.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v want %d", v, ok, i)
		}
	}
}

func TestMailboxBlockingGet(t *testing.T) {
	m := NewMailbox[string]()
	done := make(chan string)
	go func() {
		v, _ := m.Get()
		done <- v
	}()
	m.Put("hello")
	if got := <-done; got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMailboxCloseUnblocks(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan bool)
	go func() {
		_, ok := m.Get()
		done <- ok
	}()
	m.Close()
	if ok := <-done; ok {
		t.Fatal("Get returned ok after close on empty mailbox")
	}
}

func TestMailboxDrainAfterClose(t *testing.T) {
	m := NewMailbox[int]()
	m.Put(1)
	m.Put(2)
	m.Close()
	m.Put(3) // discarded
	if v, ok := m.Get(); !ok || v != 1 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if v, ok := m.Get(); !ok || v != 2 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if _, ok := m.Get(); ok {
		t.Fatal("discarded value delivered")
	}
}

func TestMailboxTryGet(t *testing.T) {
	m := NewMailbox[int]()
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	m.Put(7)
	if v, ok := m.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestMailboxRingWrapAndShrink(t *testing.T) {
	m := NewMailbox[int]()
	// Interleave puts and gets so head walks around the ring repeatedly
	// and crosses several grow/shrink boundaries.
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		burst := (round % 37) + 1
		for i := 0; i < burst; i++ {
			m.Put(next)
			next++
		}
		drain := burst
		if round%3 == 0 {
			drain = burst / 2 // leave a residue queued across rounds
		}
		for i := 0; i < drain; i++ {
			v, ok := m.Get()
			if !ok || v != want {
				t.Fatalf("round %d: Get = %d,%v want %d", round, v, ok, want)
			}
			want++
		}
	}
	for want < next {
		v, ok := m.Get()
		if !ok || v != want {
			t.Fatalf("drain: Get = %d,%v want %d", v, ok, want)
		}
		want++
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after full drain", m.Len())
	}
	if len(m.buf) != minMailboxCap {
		t.Fatalf("ring did not shrink: cap %d want %d", len(m.buf), minMailboxCap)
	}
}

func TestMailboxGetBatch(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 10; i++ {
		m.Put(i)
	}
	batch, ok := m.GetBatch(make([]int, 0, 4))
	if !ok || len(batch) != 4 {
		t.Fatalf("GetBatch = %v,%v", batch, ok)
	}
	for i, v := range batch {
		if v != i {
			t.Fatalf("batch[%d] = %d", i, v)
		}
	}
	// Remaining six fit in one oversized batch.
	batch, ok = m.GetBatch(make([]int, 0, 16))
	if !ok || len(batch) != 6 || batch[0] != 4 || batch[5] != 9 {
		t.Fatalf("GetBatch = %v,%v", batch, ok)
	}
	// A full dst returns immediately without blocking.
	full := []int{99}
	if out, ok := m.GetBatch(full); !ok || len(out) != 1 {
		t.Fatalf("GetBatch(full) = %v,%v", out, ok)
	}
	// Blocks until a value arrives.
	done := make(chan []int)
	go func() {
		out, _ := m.GetBatch(make([]int, 0, 8))
		done <- out
	}()
	m.Put(42)
	if out := <-done; len(out) != 1 || out[0] != 42 {
		t.Fatalf("blocking GetBatch = %v", out)
	}
	// Closed and drained: ok=false.
	m.Close()
	if _, ok := m.GetBatch(make([]int, 0, 8)); ok {
		t.Fatal("GetBatch on closed empty mailbox returned ok")
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := NewMailbox[int]()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Put(base + i)
			}
		}(w * per)
	}
	seen := make(map[int]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < workers*per; i++ {
			v, ok := m.Get()
			if !ok {
				t.Error("closed early")
				return
			}
			if seen[v] {
				t.Errorf("duplicate %d", v)
				return
			}
			seen[v] = true
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != workers*per {
		t.Fatalf("received %d of %d", len(seen), workers*per)
	}
}
