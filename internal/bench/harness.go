// Package bench is the measurement harness that regenerates every
// figure of the paper's evaluation (§6). Each Fig* function boots the
// protocol configurations under test on the in-process fabric, drives
// them with closed-loop clients exactly like the paper's load
// generators, and returns the measured series; cmd/hybster-bench and
// the bench_test.go benchmarks print them.
//
// Absolute numbers differ from the paper's testbed (different CPU,
// language, and a simulated SGX), but the comparative shapes — who
// wins, by what factor, where saturation sets in — are the
// reproduction targets (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/enclave"
	"hybster/internal/statemachine"
	"hybster/internal/stats"
	"hybster/internal/transport"
	"hybster/internal/workload"
)

// Point is one measurement of one series.
type Point struct {
	Series     string
	X          float64
	Throughput float64 // ops/s
	Latency    stats.Summary
	// Telemetry is the cluster-wide metric snapshot taken right after
	// the measured window (series summed across replicas). Nil for
	// points measured without a cluster (e.g. Fig. 5a certifiers).
	Telemetry map[string]float64
}

// Options control measurement length and simulated platform costs.
type Options struct {
	// Warmup is discarded before the measured window starts.
	Warmup time.Duration
	// Duration is the measured window per data point.
	Duration time.Duration
	// Clients is the closed-loop client count for throughput-oriented
	// figures (latency figures sweep their own counts).
	Clients int
	// EnclaveCost simulates the SGX transition overhead.
	EnclaveCost enclave.CostModel
	// Quick reduces sweep resolution for smoke tests.
	Quick bool
}

// DefaultOptions mirror the paper's setup at a laptop-friendly scale;
// raise Duration toward the paper's 120 s for stable numbers.
func DefaultOptions() Options {
	return Options{
		Warmup:      300 * time.Millisecond,
		Duration:    time.Second,
		Clients:     48,
		EnclaveCost: enclave.DefaultCostModel,
	}
}

// ProtocolSpec names one protocol configuration of §6 and how to scale
// it with the core count.
type ProtocolSpec struct {
	Name  string
	Proto config.Protocol
	// ScalesWithCores is false for the sequential configurations
	// (HybsterS, MinBFT), whose pillar count stays 1.
	ScalesWithCores bool
}

// Specs returns the four configurations of Figs. 5b-6c in paper order.
func Specs() []ProtocolSpec {
	return []ProtocolSpec{
		{Name: "HybsterX", Proto: config.HybsterX, ScalesWithCores: true},
		{Name: "HybsterS", Proto: config.HybsterS, ScalesWithCores: false},
		{Name: "HybridPBFT", Proto: config.HybridPBFT, ScalesWithCores: true},
		{Name: "PBFTcop", Proto: config.PBFTcop, ScalesWithCores: true},
	}
}

// BuildCluster boots one protocol configuration for benchmarking.
func BuildCluster(spec ProtocolSpec, cores, batch int, rotate bool,
	cost enclave.CostModel, profile transport.LinkProfile,
	app func() statemachine.Application) (*cluster.Cluster, error) {

	cfg := config.Default(spec.Proto)
	cfg.Pillars = 1
	if spec.ScalesWithCores {
		cfg.Pillars = cores
	}
	cfg.BatchSize = batch
	cfg.RotateLeader = rotate
	cfg.CheckpointInterval = 256
	cfg.WindowSize = 1024
	cfg.ViewChangeTimeout = 10 * time.Second // benches must never view-change
	opts := cluster.Options{Config: cfg, Profile: profile, Seed: 42, EnclaveCost: cost}
	switch spec.Proto {
	case config.HybsterS, config.HybsterX:
		return cluster.NewHybster(opts, app)
	case config.PBFTcop, config.HybridPBFT:
		return cluster.NewPBFT(opts, app)
	case config.MinBFT:
		return cluster.NewMinBFT(opts, app)
	default:
		return nil, fmt.Errorf("bench: unknown protocol %v", spec.Proto)
	}
}

// RunLoad drives `clients` closed-loop clients against the cluster:
// each continuously issues operations from its generator and waits for
// the f+1 matching replies, exactly the client behaviour of §6. Setup
// operations (key creation for the coordination service) run before
// the measured window.
func RunLoad(c *cluster.Cluster, clients int, warmup, duration time.Duration,
	newGen func(clientID uint32) workload.Generator) (float64, stats.Summary, error) {

	type setupper interface{ Setup() []workload.Op }

	var ops atomic.Uint64
	rec := stats.NewRecorder()
	var measuring atomic.Bool

	stop := make(chan struct{})
	ready := make(chan error, clients)
	var wg sync.WaitGroup

	for i := 0; i < clients; i++ {
		cl, err := c.NewClient(5 * time.Second)
		if err != nil {
			return 0, stats.Summary{}, err
		}
		gen := newGen(cl.ID())
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			if s, ok := gen.(setupper); ok {
				for _, op := range s.Setup() {
					if _, err := cl.Invoke(op.Payload, op.ReadOnly); err != nil {
						ready <- err
						return
					}
				}
			}
			ready <- nil
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				// Sample the measuring flag at op START: an op issued
				// during warmup but completing inside the window would
				// otherwise be recorded with latency accumulated before
				// measurement began, biasing the first window samples
				// upward (ops issued inside the window that complete
				// after it closes are counted — the symmetric
				// convention for closed-loop load).
				inWindow := measuring.Load()
				start := time.Now()
				if _, err := cl.Invoke(op.Payload, op.ReadOnly); err != nil {
					return // cluster shutting down or persistent failure
				}
				if inWindow {
					ops.Add(1)
					rec.Record(time.Since(start))
				}
			}
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-ready; err != nil {
			close(stop)
			wg.Wait()
			return 0, stats.Summary{}, fmt.Errorf("bench: client setup: %w", err)
		}
	}

	time.Sleep(warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	return stats.Throughput(ops.Load(), elapsed), rec.Summarize(), nil
}

// WriteTable renders points grouped by series as the rows/columns the
// paper's figures plot.
func WriteTable(w io.Writer, title, xLabel string, points []Point) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-14s %10s %14s %12s %12s %12s\n",
		"series", xLabel, "throughput", "avg-lat", "p50", "p99")
	for _, p := range points {
		fmt.Fprintf(w, "%-14s %10.2f %14s %12s %12s %12s\n",
			p.Series, p.X, stats.FormatOps(p.Throughput),
			fmtDur(p.Latency.Avg), fmtDur(p.Latency.P50), fmtDur(p.Latency.P99))
	}
	fmt.Fprintln(w)
}

// WriteCSV renders points machine-readably.
func WriteCSV(w io.Writer, points []Point) {
	fmt.Fprintln(w, "series,x,throughput_ops,avg_latency_us,p50_us,p99_us")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%g,%.1f,%d,%d,%d\n",
			p.Series, p.X, p.Throughput,
			p.Latency.Avg.Microseconds(), p.Latency.P50.Microseconds(), p.Latency.P99.Microseconds())
	}
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	if d < time.Millisecond {
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
