package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/apps/coordination"
	"hybster/internal/apps/echo"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/statemachine"
	"hybster/internal/stats"
	"hybster/internal/transport"
	"hybster/internal/trinx"
	"hybster/internal/workload"
)

// maxCores is the core sweep limit of Figs. 5a-5c (the paper's
// machines have four cores).
const maxCores = 4

// threadsPerCore models the Hyper-Threading of the paper's setup
// ("number of cores (2 hardware threads each)").
const threadsPerCore = 2

// --- Figure 5a: trusted subsystem -------------------------------------------

// certVariant builds the per-worker certifiers of one Fig. 5a series.
type certVariant struct {
	name string
	// build returns one certifier per worker; cleanup tears shared
	// state down.
	build func(workers int, key crypto.Key, cost enclave.CostModel) ([]trinx.Certifier, func())
}

func fig5aVariants() []certVariant {
	return []certVariant{
		{name: "TrInX (native)", build: func(workers int, key crypto.Key, cost enclave.CostModel) ([]trinx.Certifier, func()) {
			p := enclave.NewPlatform("fig5a")
			out := make([]trinx.Certifier, workers)
			instances := make([]*trinx.TrInX, workers)
			for i := range out {
				instances[i] = trinx.New(p, trinx.MakeInstanceID(0, uint32(i)), 1, key, cost)
				out[i] = trinx.NewCertifier(instances[i], "TrInX (native)")
			}
			return out, func() {
				for _, t := range instances {
					t.Destroy()
				}
			}
		}},
		{name: "TrInX (JNI)", build: func(workers int, key crypto.Key, cost enclave.CostModel) ([]trinx.Certifier, func()) {
			p := enclave.NewPlatform("fig5a")
			out := make([]trinx.Certifier, workers)
			instances := make([]*trinx.TrInX, workers)
			for i := range out {
				instances[i] = trinx.New(p, trinx.MakeInstanceID(0, uint32(i)), 1, key, cost)
				out[i] = trinx.NewCertifier(instances[i].WithBridge(), "TrInX (JNI)")
			}
			return out, func() {
				for _, t := range instances {
					t.Destroy()
				}
			}
		}},
		{name: "Multi-TrInX (native)", build: func(workers int, key crypto.Key, cost enclave.CostModel) ([]trinx.Certifier, func()) {
			p := enclave.NewPlatform("fig5a")
			host := trinx.NewMultiHost(p, key, cost)
			out := make([]trinx.Certifier, workers)
			for i := range out {
				inst, err := host.Instance(trinx.MakeInstanceID(0, uint32(i)), 1)
				if err != nil {
					panic(err)
				}
				out[i] = trinx.NewCertifier(inst, "Multi-TrInX (native)")
			}
			return out, host.Destroy
		}},
		{name: "TCrypto (native)", build: func(workers int, key crypto.Key, _ enclave.CostModel) ([]trinx.Certifier, func()) {
			out := make([]trinx.Certifier, workers)
			for i := range out {
				out[i] = trinx.NewTCryptoProfile(key)
			}
			return out, func() {}
		}},
		{name: "OpenSSL (native)", build: func(workers int, key crypto.Key, _ enclave.CostModel) ([]trinx.Certifier, func()) {
			out := make([]trinx.Certifier, workers)
			for i := range out {
				out[i] = trinx.NewOpenSSLProfile(key)
			}
			return out, func() {}
		}},
		{name: "Java", build: func(workers int, key crypto.Key, _ enclave.CostModel) ([]trinx.Certifier, func()) {
			out := make([]trinx.Certifier, workers)
			for i := range out {
				out[i] = trinx.NewJavaProfile(key)
			}
			return out, func() {}
		}},
	}
}

// runCertifiers measures aggregate certification throughput of 32-byte
// messages across workers, one goroutine per worker.
func runCertifiers(certs []trinx.Certifier, warmup, duration time.Duration) float64 {
	msg := make([]byte, 32)
	var ops atomic.Uint64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range certs {
		wg.Add(1)
		go func(c trinx.Certifier) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Certify(msg); err != nil {
					return
				}
				if measuring.Load() {
					ops.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	return stats.Throughput(ops.Load(), elapsed)
}

// Fig5a measures trusted-subsystem certification throughput over
// 32-byte messages for 1..4 cores (2 worker threads each), for every
// variant of §6.1.
func Fig5a(opts Options) []Point {
	key := crypto.NewKeyFromSeed("fig5a")
	var out []Point
	cores := coreSweep(opts)
	for _, v := range fig5aVariants() {
		for _, c := range cores {
			workers := c * threadsPerCore
			certs, cleanup := v.build(workers, key, opts.EnclaveCost)
			tput := runCertifiers(certs, opts.Warmup, opts.Duration)
			cleanup()
			out = append(out, Point{Series: v.name, X: float64(c), Throughput: tput})
		}
	}
	return out
}

// CASHReference returns the published comparison point of §6.1: the
// FPGA-based CASH subsystem at 57 µs per certification over a single
// channel, next to one measured single-instance TrInX.
func CASHReference(opts Options) []Point {
	key := crypto.NewKeyFromSeed("fig5a")
	cash := trinx.NewCASHProfile(key)
	cashTput := runCertifiers([]trinx.Certifier{cash}, opts.Warmup, opts.Duration)

	p := enclave.NewPlatform("cash-ref")
	inst := trinx.New(p, trinx.MakeInstanceID(0, 0), 1, key, opts.EnclaveCost)
	defer inst.Destroy()
	trinxTput := runCertifiers([]trinx.Certifier{trinx.NewCertifier(inst, "TrInX")}, opts.Warmup, opts.Duration)

	return []Point{
		{Series: "CASH (57µs, published)", X: 1, Throughput: cashTput},
		{Series: "TrInX (single instance)", X: 1, Throughput: trinxTput},
	}
}

// --- Figures 5b/5c: throughput scaling ---------------------------------------

func coreSweep(opts Options) []int {
	if opts.Quick {
		return []int{1, maxCores}
	}
	return []int{1, 2, 3, 4}
}

// throughputSweep measures all four protocol configurations over the
// core sweep with the echo microbenchmark.
func throughputSweep(opts Options, batch int, rotate bool) ([]Point, error) {
	var out []Point
	for _, spec := range Specs() {
		for _, c := range coreSweep(opts) {
			cl, err := BuildCluster(spec, c, batch, rotate, opts.EnclaveCost,
				transport.LinkProfile{}, func() statemachine.Application { return echo.New(0) })
			if err != nil {
				return nil, err
			}
			tput, lat, err := RunLoad(cl, opts.Clients, opts.Warmup, opts.Duration,
				func(uint32) workload.Generator { return workload.NewFixed(0) })
			snap := cl.TelemetrySnapshot()
			cl.Stop()
			if err != nil {
				return nil, fmt.Errorf("%s cores=%d: %w", spec.Name, c, err)
			}
			out = append(out, Point{Series: spec.Name, X: float64(c), Throughput: tput, Latency: lat, Telemetry: snap})
		}
	}
	return out, nil
}

// Fig5b: empty requests, unbatched (one instance per request), rotating
// leader.
func Fig5b(opts Options) ([]Point, error) { return throughputSweep(opts, 1, true) }

// Fig5c: empty requests, batched, rotating leader.
func Fig5c(opts Options) ([]Point, error) { return throughputSweep(opts, 16, true) }

// --- Figures 6a/6b: latency vs throughput -------------------------------------

func clientSweep(opts Options) []int {
	if opts.Quick {
		return []int{4, 32}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128}
}

// latencySweep sweeps closed-loop client counts to saturation and
// reports (throughput, latency) pairs — the axes of Figs. 6a/6b.
func latencySweep(opts Options, payload int, profile transport.LinkProfile) ([]Point, error) {
	var out []Point
	for _, spec := range Specs() {
		for _, nc := range clientSweep(opts) {
			cl, err := BuildCluster(spec, maxCores, 16, false, opts.EnclaveCost, profile,
				func() statemachine.Application { return echo.New(payload) })
			if err != nil {
				return nil, err
			}
			tput, lat, err := RunLoad(cl, nc, opts.Warmup, opts.Duration,
				func(uint32) workload.Generator { return workload.NewFixed(payload) })
			snap := cl.TelemetrySnapshot()
			cl.Stop()
			if err != nil {
				return nil, fmt.Errorf("%s clients=%d: %w", spec.Name, nc, err)
			}
			out = append(out, Point{Series: spec.Name, X: float64(nc), Throughput: tput, Latency: lat, Telemetry: snap})
		}
	}
	return out, nil
}

// Fig6a: empty payload, batched, fixed leader.
func Fig6a(opts Options) ([]Point, error) {
	return latencySweep(opts, 0, transport.LinkProfile{})
}

// Fig6b: 1 kB request and reply payloads; links carry the 1 GbE
// bandwidth of the paper's testbed so the network becomes a secondary
// limit, as §6.3 observes.
func Fig6b(opts Options) ([]Point, error) {
	return latencySweep(opts, 1024, transport.LinkProfile{Bandwidth: 125_000_000})
}

// SequentialBaselines compares the two sequential hybrid protocols —
// Hybster's basic protocol and MinBFT — head to head. The paper argues
// (§6, "Subjects") that HybsterS always reaches at least MinBFT's
// performance because MinBFT must additionally process every incoming
// message in counter order; this extension experiment measures the
// claim directly.
func SequentialBaselines(opts Options) ([]Point, error) {
	specs := []ProtocolSpec{
		{Name: "HybsterS", Proto: config.HybsterS},
		{Name: "MinBFT", Proto: config.MinBFT},
	}
	var out []Point
	for _, spec := range specs {
		for _, batch := range []int{1, 16} {
			cl, err := BuildCluster(spec, 1, batch, false, opts.EnclaveCost,
				transport.LinkProfile{}, func() statemachine.Application { return echo.New(0) })
			if err != nil {
				return nil, err
			}
			tput, lat, err := RunLoad(cl, opts.Clients, opts.Warmup, opts.Duration,
				func(uint32) workload.Generator { return workload.NewFixed(0) })
			snap := cl.TelemetrySnapshot()
			cl.Stop()
			if err != nil {
				return nil, fmt.Errorf("%s batch=%d: %w", spec.Name, batch, err)
			}
			out = append(out, Point{Series: spec.Name, X: float64(batch), Throughput: tput, Latency: lat, Telemetry: snap})
		}
	}
	return out, nil
}

// --- Figure 6c: coordination service ------------------------------------------

func readRatioSweep(opts Options) []float64 {
	if opts.Quick {
		return []float64{0, 1}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1.0}
}

// Fig6c: the ZooKeeper-inspired coordination service storing and
// retrieving 128-byte znodes, read fraction swept, fixed leader.
func Fig6c(opts Options) ([]Point, error) {
	var out []Point
	for _, spec := range Specs() {
		for _, ratio := range readRatioSweep(opts) {
			cl, err := BuildCluster(spec, maxCores, 16, false, opts.EnclaveCost,
				transport.LinkProfile{}, func() statemachine.Application { return coordination.New() })
			if err != nil {
				return nil, err
			}
			r := ratio
			tput, lat, err := RunLoad(cl, opts.Clients, opts.Warmup, opts.Duration,
				func(clientID uint32) workload.Generator {
					return workload.NewCoordination(clientID, r, 128, 16)
				})
			snap := cl.TelemetrySnapshot()
			cl.Stop()
			if err != nil {
				return nil, fmt.Errorf("%s read=%.0f%%: %w", spec.Name, ratio*100, err)
			}
			out = append(out, Point{Series: spec.Name, X: ratio * 100, Throughput: tput, Latency: lat, Telemetry: snap})
		}
	}
	return out, nil
}
