package bench

import (
	"testing"
	"time"

	"hybster/internal/apps/echo"
	"hybster/internal/enclave"
	"hybster/internal/statemachine"
	"hybster/internal/transport"
	"hybster/internal/workload"
)

// TestFig5cScalingSmoke runs the Fig. 5c HybsterX point at 1 and 4
// pillars back to back — the CI smoke for the parallel ordering path.
// The window is far too short for a trustworthy ratio, so the test
// only rejects a collapse: the 4-pillar configuration must reach a
// fraction of single-pillar throughput that any healthy sequencer
// clears by a wide margin. (A mis-gated batch hold once cost 6×; this
// floor exists to catch that class of bug, not to measure scaling —
// results/fig5c.json and scripts/bench-compare.sh do the measuring.)
func TestFig5cScalingSmoke(t *testing.T) {
	const (
		clients  = 48
		warmup   = 50 * time.Millisecond
		duration = 300 * time.Millisecond
	)
	spec := Specs()[0] // HybsterX
	tputAt := func(pillars int) float64 {
		t.Helper()
		cl, err := BuildCluster(spec, pillars, 16, true, enclave.CostModel{},
			transport.LinkProfile{}, func() statemachine.Application { return echo.New(0) })
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()
		tput, _, err := RunLoad(cl, clients, warmup, duration,
			func(uint32) workload.Generator { return workload.NewFixed(0) })
		if err != nil {
			t.Fatal(err)
		}
		if tput <= 0 {
			t.Fatalf("pillars=%d: throughput = %f", pillars, tput)
		}
		return tput
	}

	t1 := tputAt(1)
	t4 := tputAt(4)
	ratio := t4 / t1
	t.Logf("fig5c smoke: pillars=1 %.0f ops/s, pillars=4 %.0f ops/s, ratio %.2f", t1, t4, ratio)
	if ratio < 0.25 {
		t.Fatalf("4-pillar throughput collapsed to %.2fx of 1-pillar (%.0f vs %.0f ops/s)", ratio, t4, t1)
	}
}
