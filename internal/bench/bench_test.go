package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hybster/internal/apps/echo"
	"hybster/internal/enclave"
	"hybster/internal/statemachine"
	"hybster/internal/transport"
	"hybster/internal/workload"
)

// quickOpts keeps harness tests fast: tiny windows, no enclave cost.
func quickOpts() Options {
	return Options{
		Warmup:   30 * time.Millisecond,
		Duration: 150 * time.Millisecond,
		Clients:  8,
		Quick:    true,
	}
}

func TestRunLoadAllProtocols(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cl, err := BuildCluster(spec, 2, 8, false, enclave.CostModel{},
				transport.LinkProfile{}, func() statemachine.Application { return echo.New(0) })
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			tput, lat, err := RunLoad(cl, 4, 30*time.Millisecond, 200*time.Millisecond,
				func(uint32) workload.Generator { return workload.NewFixed(0) })
			if err != nil {
				t.Fatal(err)
			}
			if tput <= 0 {
				t.Fatalf("throughput = %f", tput)
			}
			if lat.Count == 0 || lat.Avg <= 0 {
				t.Fatalf("latency = %+v", lat)
			}
			if lat.P50 > lat.P99 || lat.P99 > lat.Max {
				t.Fatalf("percentiles inconsistent: %+v", lat)
			}
		})
	}
}

func TestFig5aQuick(t *testing.T) {
	opts := quickOpts()
	points := Fig5a(opts)
	// 6 variants × 2 core settings in quick mode.
	if len(points) != 12 {
		t.Fatalf("points = %d", len(points))
	}
	byName := map[string][]Point{}
	for _, p := range points {
		if p.Throughput <= 0 {
			t.Fatalf("%s x=%v: zero throughput", p.Series, p.X)
		}
		byName[p.Series] = append(byName[p.Series], p)
	}
	// Scaling with worker count only manifests with at least as many
	// physical cores as workers, which this host may not have; here we
	// only assert the series are complete and sane. The shape checks
	// live in EXPERIMENTS.md against full runs.
	for name, series := range byName {
		if len(series) != 2 {
			t.Errorf("%s: %d points", name, len(series))
		}
	}
}

func TestCASHReference(t *testing.T) {
	opts := quickOpts()
	points := CASHReference(opts)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	cash, trinx := points[0], points[1]
	// The paper: CASH ≈ 17.5k, TrInX ≈ 240k — TrInX must dominate.
	if trinx.Throughput < 2*cash.Throughput {
		t.Errorf("TrInX (%f) not clearly above CASH (%f)", trinx.Throughput, cash.Throughput)
	}
	// CASH is bounded by its 57µs service time.
	if cash.Throughput > 1e6/57*1.2 {
		t.Errorf("CASH above its physical limit: %f", cash.Throughput)
	}
}

func TestCoordinationWorkloadSetup(t *testing.T) {
	gen := workload.NewCoordination(99, 0.5, 128, 4)
	setup := gen.Setup()
	if len(setup) != 5 { // prefix + 4 keys
		t.Fatalf("setup ops = %d", len(setup))
	}
	reads, writes := 0, 0
	for i := 0; i < 200; i++ {
		op := gen.Next()
		if op.ReadOnly {
			reads++
		} else {
			writes++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("mix degenerate: %d reads, %d writes", reads, writes)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	points := []Point{{Series: "HybsterX", X: 4, Throughput: 123456}}
	var buf bytes.Buffer
	WriteTable(&buf, "Fig test", "cores", points)
	if !strings.Contains(buf.String(), "HybsterX") || !strings.Contains(buf.String(), "123.5k") {
		t.Fatalf("table output:\n%s", buf.String())
	}
	buf.Reset()
	WriteCSV(&buf, points)
	if !strings.Contains(buf.String(), "HybsterX,4,123456.0") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}
