package statemachine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
)

// testApp is a deterministic append-log application: Execute appends
// the payload and returns the new length.
type testApp struct {
	log []byte
}

func (a *testApp) Execute(client uint32, payload []byte, readOnly bool) []byte {
	if readOnly {
		return []byte(fmt.Sprintf("len=%d", len(a.log)))
	}
	a.log = append(a.log, payload...)
	return []byte(fmt.Sprintf("len=%d", len(a.log)))
}

func (a *testApp) Snapshot() []byte { return append([]byte(nil), a.log...) }

func (a *testApp) Restore(s []byte) error {
	a.log = append([]byte(nil), s...)
	return nil
}

func req(client uint32, seq uint64, payload string) *message.Request {
	return &message.Request{Client: crypto.ClientIDBase + client, Seq: seq, Payload: []byte(payload)}
}

func TestInOrderDelivery(t *testing.T) {
	e := NewExecutor(&testApp{})
	out := e.Submit(1, []*message.Request{req(0, 1, "a")})
	if len(out) != 1 || out[0].Order != 1 {
		t.Fatalf("out = %+v", out)
	}
	if string(out[0].Replies[0].Result) != "len=1" {
		t.Fatalf("result = %q", out[0].Replies[0].Result)
	}
	if e.NextOrder() != 2 || e.LastExecuted() != 1 {
		t.Fatal("cursor wrong")
	}
}

func TestOutOfOrderBufferedThenFlushed(t *testing.T) {
	e := NewExecutor(&testApp{})
	if out := e.Submit(3, []*message.Request{req(0, 3, "c")}); out != nil {
		t.Fatalf("order 3 delivered early: %+v", out)
	}
	if out := e.Submit(2, []*message.Request{req(0, 2, "b")}); out != nil {
		t.Fatalf("order 2 delivered early: %+v", out)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	out := e.Submit(1, []*message.Request{req(0, 1, "a")})
	if len(out) != 3 {
		t.Fatalf("flush delivered %d instances", len(out))
	}
	for i, ex := range out {
		if ex.Order != timeline.Order(i+1) {
			t.Fatalf("delivery order wrong: %+v", out)
		}
	}
	if e.Pending() != 0 {
		t.Fatal("pending not drained")
	}
}

func TestNoOpInstancesCloseGaps(t *testing.T) {
	e := NewExecutor(&testApp{})
	e.Submit(2, []*message.Request{req(0, 1, "x")})
	out := e.Submit(1, nil) // no-op
	if len(out) != 2 {
		t.Fatalf("delivered %d", len(out))
	}
	if len(out[0].Replies) != 0 {
		t.Fatal("no-op produced replies")
	}
}

func TestDuplicateOrderIgnored(t *testing.T) {
	e := NewExecutor(&testApp{})
	e.Submit(1, []*message.Request{req(0, 1, "a")})
	if out := e.Submit(1, []*message.Request{req(0, 9, "zzz")}); out != nil {
		t.Fatalf("re-execution of order 1: %+v", out)
	}
	// Duplicate pending submission also ignored.
	e.Submit(3, []*message.Request{req(0, 2, "c")})
	e.Submit(3, []*message.Request{req(0, 9, "z")})
	out := e.Submit(2, nil)
	if len(out) != 2 {
		t.Fatalf("delivered %d", len(out))
	}
	if string(out[1].Replies[0].Result) != "len=2" {
		t.Fatalf("second submission replaced first: %q", out[1].Replies[0].Result)
	}
}

func TestReplyCacheDeduplicatesClientRequests(t *testing.T) {
	e := NewExecutor(&testApp{})
	out := e.Submit(1, []*message.Request{req(0, 1, "a")})
	first := out[0].Replies[0]

	// The same request ordered again (e.g. retransmitted and ordered
	// by a second instance) must not re-execute.
	out = e.Submit(2, []*message.Request{req(0, 1, "a")})
	dup := out[0].Replies[0]
	if !dup.Cached {
		t.Fatal("duplicate not served from cache")
	}
	if !bytes.Equal(dup.Result, first.Result) {
		t.Fatalf("cached reply differs: %q vs %q", dup.Result, first.Result)
	}

	// An older request is dropped silently (no reply at all).
	out = e.Submit(3, []*message.Request{req(0, 1, "a"), req(0, 2, "b")})
	if len(out[0].Replies) != 2 {
		t.Fatalf("replies = %+v", out[0].Replies)
	}
	out = e.Submit(4, []*message.Request{req(0, 1, "old")})
	if len(out[0].Replies) != 0 {
		t.Fatalf("stale request produced a reply: %+v", out[0].Replies)
	}
}

func TestStateDigestDeterministicAcrossReplicas(t *testing.T) {
	mk := func() *Executor { return NewExecutor(&testApp{}) }
	a, b := mk(), mk()
	batches := [][]*message.Request{
		{req(0, 1, "x"), req(1, 1, "y")},
		{req(0, 2, "z")},
		nil,
		{req(2, 1, "w")},
	}
	for i, batch := range batches {
		a.Submit(timeline.Order(i+1), batch)
		b.Submit(timeline.Order(i+1), batch)
	}
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("same history, different state digests")
	}
	// Different history → different digest.
	c := mk()
	c.Submit(1, []*message.Request{req(0, 1, "other")})
	if a.StateDigest() == c.StateDigest() {
		t.Fatal("different histories share a digest")
	}
}

func TestReplyVectorAffectsDigest(t *testing.T) {
	a := NewExecutor(&testApp{})
	b := NewExecutor(&testApp{})
	// Same app state (read-only ops don't change it) but different
	// reply cache contents.
	a.Submit(1, []*message.Request{{Client: 1, Seq: 1, Payload: []byte("r"), ReadOnly: true}})
	b.Submit(1, []*message.Request{{Client: 2, Seq: 1, Payload: []byte("r"), ReadOnly: true}})
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("reply vector not covered by state digest")
	}
}

func TestInstallStateAndDrain(t *testing.T) {
	// Replica A executes 1..5; replica B starts empty, receives A's
	// snapshot at 5, then continues with buffered 6.
	a := NewExecutor(&testApp{})
	for o := timeline.Order(1); o <= 5; o++ {
		a.Submit(o, []*message.Request{req(0, uint64(o), "x")})
	}
	b := NewExecutor(&testApp{})
	b.Submit(6, []*message.Request{req(0, 6, "x")}) // buffered future instance

	if err := b.InstallState(5, a.Snapshot(), a.ReplyVector()); err != nil {
		t.Fatal(err)
	}
	if b.StateDigest() != a.StateDigest() {
		t.Fatal("digests differ after state transfer")
	}
	out := b.Drain()
	if len(out) != 1 || out[0].Order != 6 {
		t.Fatalf("drain = %+v", out)
	}

	a.Submit(6, []*message.Request{req(0, 6, "x")})
	if b.StateDigest() != a.StateDigest() {
		t.Fatal("replicas diverged after catch-up")
	}
}

func TestInstallStateRefusesBackwards(t *testing.T) {
	e := NewExecutor(&testApp{})
	for o := timeline.Order(1); o <= 10; o++ {
		e.Submit(o, nil)
	}
	if err := e.InstallState(5, nil, nil); err == nil {
		t.Fatal("moved backwards")
	}
}

func TestInstallStateDropsStalePending(t *testing.T) {
	e := NewExecutor(&testApp{})
	e.Submit(3, []*message.Request{req(0, 1, "x")})
	src := NewExecutor(&testApp{})
	for o := timeline.Order(1); o <= 4; o++ {
		src.Submit(o, nil)
	}
	if err := e.InstallState(4, src.Snapshot(), src.ReplyVector()); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatal("stale pending instance survived install")
	}
	if e.NextOrder() != 5 {
		t.Fatalf("next = %d", e.NextOrder())
	}
}

func TestReplyVectorRoundtripCorrupt(t *testing.T) {
	e := NewExecutor(&testApp{})
	e.Submit(1, []*message.Request{req(0, 1, "a")})
	rv := e.ReplyVector()

	fresh := NewExecutor(&testApp{})
	if err := fresh.InstallState(1, e.Snapshot(), rv); err != nil {
		t.Fatal(err)
	}
	if err := NewExecutor(&testApp{}).InstallState(1, nil, rv[:len(rv)-1]); err == nil {
		t.Fatal("corrupt reply vector accepted")
	}
}

func TestRandomInterleavingsConverge(t *testing.T) {
	// Property: any submission order of the same instances yields the
	// same final state.
	const instances = 40
	batches := make([][]*message.Request, instances)
	for i := range batches {
		batches[i] = []*message.Request{req(uint32(i%3), uint64(i/3+1), fmt.Sprintf("p%d", i))}
	}
	ref := NewExecutor(&testApp{})
	for i, b := range batches {
		ref.Submit(timeline.Order(i+1), b)
	}
	want := ref.StateDigest()

	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		perm := rng.Perm(instances)
		e := NewExecutor(&testApp{})
		total := 0
		for _, idx := range perm {
			total += len(e.Submit(timeline.Order(idx+1), batches[idx]))
		}
		if total != instances {
			t.Fatalf("trial %d: delivered %d of %d", trial, total, instances)
		}
		if e.StateDigest() != want {
			t.Fatalf("trial %d: diverged", trial)
		}
	}
}

func TestNilApplicationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExecutor(nil)
}

func TestLargeSeqNumbers(t *testing.T) {
	e := NewExecutor(&testApp{})
	var big uint64 = 1<<63 + 5
	out := e.Submit(1, []*message.Request{req(0, big, "a")})
	if len(out[0].Replies) != 1 {
		t.Fatal("large seq rejected")
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], big)
	_ = buf
	out = e.Submit(2, []*message.Request{req(0, big-1, "b")})
	if len(out[0].Replies) != 0 {
		t.Fatal("older seq executed after larger seq")
	}
}
