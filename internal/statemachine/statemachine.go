// Package statemachine contains the application-facing side of the
// replication stack: the Application interface a replicated service
// implements, and the Executor — the execution stage that delivers
// committed batches to the service strictly in order-number sequence,
// buffers out-of-order completions from parallel pillars, deduplicates
// client requests through a reply cache, and produces the state and
// return-value digests checkpoints are built from (§5.2.2).
package statemachine

import (
	"fmt"
	"sort"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
)

// Application is a deterministic replicated service. All replicas
// execute the same requests in the same order, so Execute must be a
// pure function of the current state and its arguments.
type Application interface {
	// Execute applies one request and returns its result.
	Execute(client uint32, payload []byte, readOnly bool) []byte
	// Snapshot serializes the full service state.
	Snapshot() []byte
	// Restore replaces the service state with a snapshot.
	Restore(snapshot []byte) error
}

// SnapshotViewer is an optional Application capability for cheap
// checkpointing: SnapshotView returns a closure that serializes the
// state exactly as it is NOW, but may be invoked later, from another
// goroutine, while the application keeps executing. Implementations
// typically clone the state structurally under their own lock (copy-
// on-write at checkpoint granularity) and leave the byte encoding to
// the closure. Applications without it fall back to a synchronous
// Snapshot on the execution loop.
type SnapshotViewer interface {
	SnapshotView() func() []byte
}

// Reply is the outcome of executing one request.
type Reply struct {
	Client uint32
	Seq    uint64
	Result []byte
	// Cached is true when the reply was served from the reply cache
	// because the request had already been executed.
	Cached bool
}

// Executed reports the delivery of one consensus instance.
type Executed struct {
	Order   timeline.Order
	Replies []Reply
}

// replyEntry is the cached last reply of one client — the "vector of
// return values containing an entry for the last requests of each
// client" of §5.2.2.
type replyEntry struct {
	Seq    uint64
	Result []byte
}

// Executor is the execution stage. It is confined to a single
// goroutine (the execution loop of a replica).
type Executor struct {
	app     app
	next    timeline.Order
	pending map[timeline.Order][]*message.Request
	replies map[uint32]replyEntry
}

// app wraps Application so a nil check happens once.
type app struct{ Application }

// NewExecutor creates an execution stage over the given application,
// starting delivery at order number 1.
func NewExecutor(a Application) *Executor {
	if a == nil {
		panic("statemachine: nil application")
	}
	return &Executor{
		app:     app{a},
		next:    1,
		pending: make(map[timeline.Order][]*message.Request),
		replies: make(map[uint32]replyEntry),
	}
}

// NextOrder returns the order number the executor will deliver next.
func (e *Executor) NextOrder() timeline.Order { return e.next }

// LastExecuted returns the highest order number already delivered.
func (e *Executor) LastExecuted() timeline.Order { return e.next - 1 }

// Pending returns the number of buffered out-of-order instances.
func (e *Executor) Pending() int { return len(e.pending) }

// Buffer stores a committed instance without delivering anything. It
// returns false if the order was already executed or already buffered.
func (e *Executor) Buffer(o timeline.Order, batch []*message.Request) bool {
	if o < e.next {
		return false
	}
	if _, dup := e.pending[o]; dup {
		return false
	}
	e.pending[o] = batch
	return true
}

// Step delivers the next instance if it is buffered, or returns nil.
// Separating Buffer and Step lets the execution loop observe state
// between deliveries — checkpoints must snapshot exactly at interval
// boundaries.
func (e *Executor) Step() *Executed {
	b, ok := e.pending[e.next]
	if !ok {
		return nil
	}
	delete(e.pending, e.next)
	ex := e.execute(e.next, b)
	e.next++
	return &ex
}

// Submit hands a committed instance to the execution stage. Instances
// may arrive in any order (pillars complete independently); batches are
// buffered and delivered strictly in sequence. An empty batch is a
// no-op instance closing a gap. The returned slice lists every instance
// that became deliverable, in delivery order. Re-submission of an
// already-executed order is ignored.
func (e *Executor) Submit(o timeline.Order, batch []*message.Request) []Executed {
	if !e.Buffer(o, batch) {
		return nil
	}
	var out []Executed
	for {
		ex := e.Step()
		if ex == nil {
			break
		}
		out = append(out, *ex)
	}
	return out
}

// execute runs one batch through the application, consulting the reply
// cache for duplicates.
func (e *Executor) execute(o timeline.Order, batch []*message.Request) Executed {
	ex := Executed{Order: o}
	for _, r := range batch {
		if last, ok := e.replies[r.Client]; ok && r.Seq <= last.Seq {
			// Duplicate or old request: do not re-execute; answer the
			// most recent request from the cache (PBFT-style at-most-
			// once semantics).
			if r.Seq == last.Seq {
				ex.Replies = append(ex.Replies, Reply{
					Client: r.Client, Seq: r.Seq, Result: last.Result, Cached: true,
				})
			}
			continue
		}
		res := e.app.Execute(r.Client, r.Payload, r.ReadOnly)
		e.replies[r.Client] = replyEntry{Seq: r.Seq, Result: res}
		ex.Replies = append(ex.Replies, Reply{Client: r.Client, Seq: r.Seq, Result: res})
	}
	return ex
}

// CheckpointView captures the executor's checkpoint state at an
// interval boundary without serializing the application synchronously:
// the reply vector is marshaled eagerly (it is executor-owned and
// mutates with the very next delivery) while the application snapshot
// is deferred behind a SnapshotView closure. Materialization — the
// expensive encode plus the digest hashes — then happens on whichever
// goroutine consumes the view (the coordinator), off the execution
// loop. A CheckpointView is single-consumer: its methods memoize and
// are not safe for concurrent use.
type CheckpointView struct {
	// Order is the checkpoint boundary the view was taken at.
	Order timeline.Order

	view func() []byte
	rv   []byte

	snapshot []byte
	taken    bool
}

// CheckpointView snapshots the executor's checkpoint state at the
// current execution point. Must be called exactly at the interval
// boundary, before the next instance is delivered.
func (e *Executor) CheckpointView() *CheckpointView {
	cv := &CheckpointView{Order: e.next - 1, rv: e.marshalReplies()}
	if sv, ok := e.app.Application.(SnapshotViewer); ok {
		cv.view = sv.SnapshotView()
	} else {
		// No view capability: serialize now (on the caller's loop), the
		// pre-SnapshotViewer behavior.
		b := e.app.Snapshot()
		cv.view = func() []byte { return b }
	}
	return cv
}

// Snapshot materializes the application snapshot (memoized).
func (v *CheckpointView) Snapshot() []byte {
	if !v.taken {
		v.snapshot = v.view()
		v.taken = true
	}
	return v.snapshot
}

// ReplyVector returns the reply cache as of the boundary.
func (v *CheckpointView) ReplyVector() []byte { return v.rv }

// StateDigest returns the checkpoint digest of the view: H(snapshot)
// combined with H(reply vector).
func (v *CheckpointView) StateDigest() crypto.Digest {
	return crypto.Combine(crypto.Hash(v.Snapshot()), crypto.Hash(v.rv))
}

// ReplyVectorDigest folds the reply cache into a digest. It is combined
// with the application state digest in CHECKPOINT messages so that a
// fallen-behind replica obtaining the state also obtains provably
// correct return values for skipped requests (§5.2.2).
func (e *Executor) ReplyVectorDigest() crypto.Digest {
	return crypto.Hash(e.marshalReplies())
}

// StateDigest returns the checkpoint digest at the current execution
// point: H(application snapshot) combined with the reply-vector digest.
func (e *Executor) StateDigest() crypto.Digest {
	return crypto.Combine(crypto.Hash(e.app.Snapshot()), e.ReplyVectorDigest())
}

// Snapshot serializes the application state for checkpointing and
// state transfer.
func (e *Executor) Snapshot() []byte { return e.app.Snapshot() }

// ReplyVector serializes the reply cache for state transfer.
func (e *Executor) ReplyVector() []byte { return e.marshalReplies() }

// InstallState replaces the executor's state with a transferred
// snapshot taken at checkpoint order ckpt: the application state, the
// reply vector, and the delivery cursor. Buffered instances at or below
// ckpt are dropped; later ones are kept and may become deliverable
// immediately (the caller should follow up with a Drain call via
// Submit of already-buffered orders — they remain pending here).
func (e *Executor) InstallState(ckpt timeline.Order, snapshot, replyVector []byte) error {
	if ckpt < e.next-1 {
		return fmt.Errorf("statemachine: refusing to move backwards: at %d, snapshot %d", e.next-1, ckpt)
	}
	if err := e.app.Restore(snapshot); err != nil {
		return fmt.Errorf("statemachine: restore: %w", err)
	}
	replies, err := unmarshalReplies(replyVector)
	if err != nil {
		return err
	}
	e.replies = replies
	e.next = ckpt + 1
	for o := range e.pending {
		if o <= ckpt {
			delete(e.pending, o)
		}
	}
	return nil
}

// Drain delivers any buffered instances that became contiguous after
// InstallState.
func (e *Executor) Drain() []Executed {
	var out []Executed
	for {
		b, ok := e.pending[e.next]
		if !ok {
			return out
		}
		delete(e.pending, e.next)
		out = append(out, e.execute(e.next, b))
		e.next++
	}
}

// marshalReplies serializes the reply cache deterministically (sorted
// by client ID) so its digest is identical across replicas.
func (e *Executor) marshalReplies() []byte {
	clients := make([]uint32, 0, len(e.replies))
	for c := range e.replies {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	enc := message.NewEncoder(16 + 48*len(clients))
	enc.U32(uint32(len(clients)))
	for _, c := range clients {
		entry := e.replies[c]
		enc.U32(c)
		enc.U64(entry.Seq)
		enc.VarBytes(entry.Result)
	}
	return enc.Bytes()
}

func unmarshalReplies(buf []byte) (map[uint32]replyEntry, error) {
	d := message.NewDecoder(buf)
	n := d.Len(16)
	replies := make(map[uint32]replyEntry, n)
	for i := 0; i < n; i++ {
		c := d.U32()
		seq := d.U64()
		res := d.VarBytes()
		if d.Err() != nil {
			break
		}
		replies[c] = replyEntry{Seq: seq, Result: append([]byte(nil), res...)}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("statemachine: reply vector: %w", err)
	}
	return replies, nil
}
