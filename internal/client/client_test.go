package client

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/transport"
)

// fakeReplica answers requests with configurable results.
type fakeReplica struct {
	ep     transport.Endpoint
	ks     *crypto.KeyStore
	mu     sync.Mutex
	result func(req *message.Request) []byte
	seen   int
	mute   bool
}

func newFakeReplica(net *transport.Network, id uint32, cfg config.Config) *fakeReplica {
	f := &fakeReplica{
		ep:     net.Endpoint(id),
		ks:     crypto.NewKeyStore(id, crypto.NewKeyFromSeed(cfg.KeySeed)),
		result: func(req *message.Request) []byte { return []byte("ok") },
	}
	f.ep.Handle(func(from uint32, m message.Message) {
		req, ok := m.(*message.Request)
		if !ok {
			return
		}
		f.mu.Lock()
		f.seen++
		mute := f.mute
		res := f.result(req)
		f.mu.Unlock()
		if mute {
			return
		}
		rep := &message.Reply{Replica: f.ep.ID(), Client: req.Client, Seq: req.Seq, Result: res}
		d := rep.Digest()
		rep.MAC = f.ks.KeyFor(req.Client).Sum(d[:])
		_ = f.ep.Send(req.Client, rep)
	})
	return f
}

func setup(t *testing.T) (config.Config, *transport.Network, []*fakeReplica) {
	t.Helper()
	cfg := config.Default(config.HybsterX) // n=3, f=1
	net := transport.NewNetwork(transport.LinkProfile{}, 1)
	t.Cleanup(net.Close)
	replicas := make([]*fakeReplica, cfg.N)
	for i := range replicas {
		replicas[i] = newFakeReplica(net, uint32(i), cfg)
	}
	return cfg, net, replicas
}

func newClient(t *testing.T, cfg config.Config, net *transport.Network, timeout time.Duration) *Client {
	t.Helper()
	cl, err := New(Options{
		Config:   cfg,
		ID:       crypto.ClientIDBase,
		Endpoint: net.Endpoint(crypto.ClientIDBase),
		Timeout:  timeout,
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestInvokeAcceptsFPlus1Matching(t *testing.T) {
	cfg, net, _ := setup(t)
	cl := newClient(t, cfg, net, 200*time.Millisecond)
	res, err := cl.Invoke([]byte("op"), false)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok" {
		t.Fatalf("res = %q", res)
	}
}

func TestInvokeRejectsBelowIDBase(t *testing.T) {
	cfg, net, _ := setup(t)
	_, err := New(Options{Config: cfg, ID: 5, Endpoint: net.Endpoint(5)})
	if err == nil {
		t.Fatal("client with replica-range ID accepted")
	}
}

func TestSingleFaultyReplyDoesNotSatisfy(t *testing.T) {
	cfg, net, replicas := setup(t)
	// Replica 1 lies; replicas 0 and 2 agree → the truthful value wins.
	replicas[1].mu.Lock()
	replicas[1].result = func(req *message.Request) []byte { return []byte("lie") }
	replicas[1].mu.Unlock()

	cl := newClient(t, cfg, net, 200*time.Millisecond)
	res, err := cl.Invoke([]byte("op"), false)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok" {
		t.Fatalf("accepted the faulty reply %q", res)
	}
}

func TestAllRepliesDifferentTimesOut(t *testing.T) {
	cfg, net, replicas := setup(t)
	for i, r := range replicas {
		i := i
		r.mu.Lock()
		r.result = func(req *message.Request) []byte { return []byte{byte(i)} }
		r.mu.Unlock()
	}
	cl := newClient(t, cfg, net, 50*time.Millisecond)
	_, err := cl.Invoke([]byte("op"), false)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestBadReplyMACIgnored(t *testing.T) {
	cfg, net, replicas := setup(t)
	// Replica 2 sends garbage MACs: its replies must not count, but
	// 0 + 1 still form f+1.
	replicas[2].ep.Handle(func(from uint32, m message.Message) {
		req, ok := m.(*message.Request)
		if !ok {
			return
		}
		rep := &message.Reply{Replica: 2, Client: req.Client, Seq: req.Seq, Result: []byte("ok")}
		rep.MAC = crypto.MAC{0xde, 0xad}
		_ = replicas[2].ep.Send(req.Client, rep)
	})
	cl := newClient(t, cfg, net, 200*time.Millisecond)
	if _, err := cl.Invoke([]byte("op"), false); err != nil {
		t.Fatal(err)
	}
}

func TestRetransmitsWhenPreferredSilent(t *testing.T) {
	cfg, net, replicas := setup(t)
	// The preferred replica (0, fixed leader) never answers; the
	// client must fall back to multicast and still succeed via 1+2.
	replicas[0].mu.Lock()
	replicas[0].mute = true
	replicas[0].mu.Unlock()

	cl := newClient(t, cfg, net, 40*time.Millisecond)
	if _, err := cl.Invoke([]byte("op"), false); err != nil {
		t.Fatal(err)
	}
	// After the failure the client starts subsequent requests with a
	// multicast immediately: replicas 1/2 see request two quickly.
	start := time.Now()
	if _, err := cl.Invoke([]byte("op2"), false); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 35*time.Millisecond {
		t.Fatalf("second request took %v — client did not adapt", elapsed)
	}
}

func TestRequestsCarryIncreasingSeq(t *testing.T) {
	cfg, net, replicas := setup(t)
	var mu sync.Mutex
	var seqs []uint64
	replicas[0].mu.Lock()
	orig := replicas[0].result
	replicas[0].result = func(req *message.Request) []byte {
		mu.Lock()
		seqs = append(seqs, req.Seq)
		mu.Unlock()
		return orig(req)
	}
	replicas[0].mu.Unlock()

	cl := newClient(t, cfg, net, 200*time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke(nil, false); err != nil {
			t.Fatal(err)
		}
	}
	// Retransmissions may repeat a sequence number, but fresh requests
	// must use strictly increasing ones.
	mu.Lock()
	defer mu.Unlock()
	unique := map[uint64]bool{}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("seqs went backwards: %v", seqs)
		}
	}
	for _, s := range seqs {
		unique[s] = true
	}
	if len(unique) != 5 {
		t.Fatalf("saw %d distinct seqs, want 5: %v", len(unique), seqs)
	}
}

func TestRequestAuthenticatorValid(t *testing.T) {
	cfg, net, _ := setup(t)
	got := make(chan *message.Request, 1)
	verifier := net.Endpoint(0)
	verifier.Handle(func(from uint32, m message.Message) {
		if req, ok := m.(*message.Request); ok {
			select {
			case got <- req:
			default:
			}
		}
	})
	cl := newClient(t, cfg, net, 50*time.Millisecond)
	go cl.Invoke([]byte("op"), false) //nolint:errcheck — times out, irrelevant

	select {
	case req := <-got:
		ks := crypto.NewKeyStore(0, crypto.NewKeyFromSeed(cfg.KeySeed))
		if !crypto.VerifyAuthenticator(ks, req.Auth, req.Digest()) {
			t.Fatal("request authenticator invalid at replica")
		}
	case <-time.After(time.Second):
		t.Fatal("no request observed")
	}
}

func TestCloseUnblocksInvoke(t *testing.T) {
	cfg, net, replicas := setup(t)
	for _, r := range replicas {
		r.mu.Lock()
		r.mute = true
		r.mu.Unlock()
	}
	cl := newClient(t, cfg, net, time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Invoke([]byte("op"), false)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cl.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Invoke did not unblock on Close")
	}
	if _, err := cl.Invoke(nil, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("err after close = %v", err)
	}
}

func TestInvokeAsync(t *testing.T) {
	cfg, net, _ := setup(t)
	cl := newClient(t, cfg, net, 200*time.Millisecond)
	ch := cl.InvokeAsync([]byte("op"), false)
	select {
	case res, ok := <-ch:
		if !ok || string(res) != "ok" {
			t.Fatalf("async result %q ok=%v", res, ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("async result never arrived")
	}
}

func TestRotationPrefersAssignedProposer(t *testing.T) {
	cfg, net, replicas := setup(t)
	cfg.RotateLeader = true
	cl, err := New(Options{
		Config: cfg, ID: crypto.ClientIDBase + 1,
		Endpoint: net.Endpoint(crypto.ClientIDBase + 1), Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The first attempt must reach only the assigned proposer; the
	// eventual multicast (needed for the f+1 quorum) comes later.
	want := uint32((crypto.ClientIDBase + 1) % 3)
	go cl.Invoke([]byte("op"), false) //nolint:errcheck — inspected below
	time.Sleep(50 * time.Millisecond)
	for i, r := range replicas {
		r.mu.Lock()
		seen := r.seen
		r.mu.Unlock()
		if uint32(i) == want && seen == 0 {
			t.Fatalf("assigned proposer %d never saw the request", want)
		}
		if uint32(i) != want && seen != 0 {
			t.Fatalf("replica %d saw a direct request meant for %d", i, want)
		}
	}
}
