// Package client implements the BFT client: it authenticates requests
// with a group-wide MAC authenticator, sends them to its designated
// proposer (or the current leader), collects f+1 matching replies —
// the acceptance rule of §2 — and retransmits to the whole group when
// a result does not arrive in time, which also covers leader failure
// (§5.2.3 example, step 3).
package client

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/transport"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: closed")

// ErrTimeout is returned when a request exhausts its retries.
var ErrTimeout = errors.New("client: request timed out")

// Options configure a Client.
type Options struct {
	// Config is the replica group configuration.
	Config config.Config
	// ID is the client's node ID (>= crypto.ClientIDBase).
	ID uint32
	// Endpoint connects the client to the group.
	Endpoint transport.Endpoint
	// Timeout is the per-attempt reply timeout before retransmitting;
	// zero selects one second.
	Timeout time.Duration
	// Retries is the number of retransmissions before giving up; zero
	// selects 8.
	Retries int
}

// pending tracks one outstanding request.
type pending struct {
	seq     uint64
	done    chan []byte
	replies map[uint32][]byte // replica -> result
}

// Client issues requests to a replica group. It is safe for
// concurrent use; requests from one client are sequenced by an
// internal counter.
type Client struct {
	cfg     config.Config
	id      uint32
	ep      transport.Endpoint
	ks      *crypto.KeyStore
	timeout time.Duration
	retries int

	mu     sync.Mutex
	seq    uint64
	pend   map[uint64]*pending
	closed bool
	// direct reports whether the last request succeeded without
	// retransmission; when false, new requests start with a multicast
	// (the preferred replica is likely faulty or demoted).
	direct atomic.Bool
}

// New creates a client and installs its reply handler.
func New(opts Options) (*Client, error) {
	if opts.ID < crypto.ClientIDBase {
		return nil, fmt.Errorf("client: ID %d below ClientIDBase", opts.ID)
	}
	if opts.Timeout == 0 {
		opts.Timeout = time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 8
	}
	c := &Client{
		cfg:     opts.Config,
		id:      opts.ID,
		ep:      opts.Endpoint,
		ks:      crypto.NewKeyStore(opts.ID, crypto.NewKeyFromSeed(opts.Config.KeySeed)),
		timeout: opts.Timeout,
		retries: opts.Retries,
		pend:    make(map[uint64]*pending),
	}
	c.direct.Store(true)
	c.ep.Handle(c.onMessage)
	return c, nil
}

// ID returns the client's node ID.
func (c *Client) ID() uint32 { return c.id }

// Close shuts the client down; outstanding calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	for _, p := range c.pend {
		close(p.done)
	}
	c.pend = make(map[uint64]*pending)
	c.mu.Unlock()
	_ = c.ep.Close()
}

// preferredReplica returns the replica a fresh request is sent to:
// with rotation, the client's statically assigned proposer; without,
// the assumed current leader (view 0's — retransmission reaches any
// later leader).
func (c *Client) preferredReplica() uint32 {
	if c.cfg.RotateLeader {
		return c.id % uint32(c.cfg.N)
	}
	return 0
}

// Invoke submits an operation and blocks until f+1 matching replies
// arrive or retries are exhausted.
func (c *Client) Invoke(payload []byte, readOnly bool) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	req := &message.Request{Client: c.id, Seq: c.seq, ReadOnly: readOnly, Payload: payload}
	req.Auth = crypto.NewAuthenticator(c.ks, req.Digest(), c.cfg.N)
	p := &pending{seq: req.Seq, done: make(chan []byte, 1), replies: make(map[uint32][]byte)}
	c.pend[req.Seq] = p
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.pend, p.seq)
		c.mu.Unlock()
	}()

	// The first attempt goes to the preferred replica only — unless a
	// previous request needed retransmission, in which case that
	// replica is likely faulty and we multicast right away. Every
	// retry multicasts, because the client cannot know whether a
	// faulty leader suppressed the request (§5.2.3).
	if c.direct.Load() {
		_ = c.ep.Send(c.preferredReplica(), req)
	} else {
		transport.Multicast(c.ep, c.cfg.N, req)
	}
	for attempt := 0; attempt <= c.retries; attempt++ {
		select {
		case res, ok := <-p.done:
			if !ok {
				return nil, ErrClosed
			}
			c.direct.Store(attempt == 0)
			return res, nil
		case <-time.After(c.timeout):
			transport.Multicast(c.ep, c.cfg.N, req)
		}
	}
	return nil, fmt.Errorf("%w: seq %d after %d attempts", ErrTimeout, p.seq, c.retries+1)
}

// onMessage handles replica replies.
func (c *Client) onMessage(from uint32, m message.Message) {
	rep, ok := m.(*message.Reply)
	if !ok || rep.Client != c.id || rep.Replica != from {
		return
	}
	d := rep.Digest()
	if !c.ks.KeyFor(from).Verify(d[:], rep.MAC) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pend[rep.Seq]
	if !ok {
		return
	}
	p.replies[from] = rep.Result

	// Accept once f+1 replicas returned byte-identical results.
	matching := 0
	for _, other := range p.replies {
		if bytes.Equal(other, rep.Result) {
			matching++
		}
	}
	if matching >= c.cfg.F()+1 {
		select {
		case p.done <- rep.Result:
		default:
		}
	}
}

// InvokeAsync submits an operation without waiting; the result is
// delivered on the returned channel (closed on client shutdown). It
// is the building block for the closed-loop load generators of the
// benchmark harness.
func (c *Client) InvokeAsync(payload []byte, readOnly bool) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		res, err := c.Invoke(payload, readOnly)
		if err == nil {
			out <- res
		}
		close(out)
	}()
	return out
}
