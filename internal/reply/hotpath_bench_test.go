package reply

import (
	"testing"

	"hybster/internal/apps/echo"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
)

// Hot-path microbenchmarks for the execute→reply tail of the pipeline:
// what one committed batch costs from executor delivery through reply
// authentication. BenchmarkHotPath* results are the before/after
// evidence for hot-path optimization work (see BENCH_hotpath.txt).

// nullSender swallows replies; the bench measures MAC + dispatch cost,
// not the transport.
type nullSender struct{}

func (nullSender) Send(uint32, message.Message) error { return nil }

// BenchmarkHotPathReplyPath measures the full reply stage: submit,
// shard handoff, MAC under the pairwise client key, send. One op is
// one reply end to end (Close at the end waits out the drain, so the
// timed region covers the worker-side work too).
func BenchmarkHotPathReplyPath(b *testing.B) {
	ks := crypto.NewKeyStore(0, crypto.NewKeyFromSeed("bench"))
	result := make([]byte, 32)
	st := NewStage(0, ks, nullSender{}, 2, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(crypto.ClientIDBase+uint32(i%16), uint64(i/16+1), result)
	}
	st.Close()
}

// BenchmarkHotPathExecDrain measures the exec-stage drain for one
// committed batch: buffer, in-order delivery through the application,
// reply-cache update, and handoff of every reply to the reply stage.
// One op is one 16-request batch.
func BenchmarkHotPathExecDrain(b *testing.B) {
	const batchSize = 16
	x := statemachine.NewExecutor(echo.New(32))
	st := NewStage(0, crypto.NewKeyStore(0, crypto.NewKeyFromSeed("bench")), nullSender{}, 2, nil)
	batch := make([]*message.Request, batchSize)
	for j := range batch {
		batch[j] = &message.Request{
			Client:  crypto.ClientIDBase + uint32(j),
			Payload: []byte("payload-0000"),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j].Seq = uint64(i + 1)
		}
		if !x.Buffer(timeline.Order(i+1), batch) {
			b.Fatal("buffer rejected in-order batch")
		}
		ex := x.Step()
		if ex == nil {
			b.Fatal("step delivered nothing")
		}
		for _, r := range ex.Replies {
			st.Submit(r.Client, r.Seq, r.Result)
		}
	}
	st.Close()
}
