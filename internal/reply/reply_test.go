package reply

import (
	"sync"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/message"
)

// sink is a thread-safe Sender that records every reply per client.
type sink struct {
	mu  sync.Mutex
	got map[uint32][]*message.Reply
}

func newSink() *sink { return &sink{got: make(map[uint32][]*message.Reply)} }

func (s *sink) Send(to uint32, m message.Message) error {
	rep := m.(*message.Reply)
	s.mu.Lock()
	s.got[rep.Client] = append(s.got[rep.Client], rep)
	s.mu.Unlock()
	return nil
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rs := range s.got {
		n += len(rs)
	}
	return n
}

// TestPerClientOrderPreserved checks the ordering contract the reply
// cache depends on: a single client's replies are sent in submission
// order even though the stage fans work across several workers. Run
// under -race this also exercises the shard mailboxes for data races.
func TestPerClientOrderPreserved(t *testing.T) {
	const clients, perClient = 32, 200
	sk := newSink()
	st := NewStage(0, crypto.NewKeyStore(0, crypto.NewKeyFromSeed("t")), sk, 4, nil)

	// One submitter per client mirrors production: the exec loop is a
	// single goroutine, so any one client's Submits are ordered; using
	// several goroutines for distinct clients additionally stresses the
	// shard mailboxes under concurrent producers.
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client uint32) {
			defer wg.Done()
			for seq := uint64(1); seq <= perClient; seq++ {
				st.Submit(client, seq, []byte{byte(seq)})
			}
		}(crypto.ClientIDBase + uint32(c))
	}
	wg.Wait()
	st.Close()

	if got := sk.count(); got != clients*perClient {
		t.Fatalf("delivered %d replies, want %d", got, clients*perClient)
	}
	for client, reps := range sk.got {
		for i, rep := range reps {
			if rep.Seq != uint64(i+1) {
				t.Fatalf("client %d reply %d has seq %d — order regressed", client, i, rep.Seq)
			}
		}
	}
}

// TestDistinctClientsShardedAndAuthenticated checks that every reply
// carries a MAC the client can verify (pairwise key is symmetric) and
// that clients mapping to different shards all complete.
func TestDistinctClientsShardedAndAuthenticated(t *testing.T) {
	master := crypto.NewKeyFromSeed("t")
	const replica = 2
	sk := newSink()
	st := NewStage(replica, crypto.NewKeyStore(replica, master), sk, 3, nil)

	const clients = 7 // not a multiple of the worker count: shards uneven
	for c := 0; c < clients; c++ {
		st.Submit(crypto.ClientIDBase+uint32(c), 1, []byte("r"))
	}
	st.Close()

	if len(sk.got) != clients {
		t.Fatalf("replies reached %d clients, want %d", len(sk.got), clients)
	}
	for client, reps := range sk.got {
		// Verify as the client would: same pairwise key, fresh digest.
		ks := crypto.NewKeyStore(client, master)
		rep := reps[0]
		d := rep.Digest()
		want := ks.KeyFor(replica).Sum(d[:])
		if rep.MAC != want {
			t.Fatalf("client %d reply MAC does not verify", client)
		}
		if rep.Replica != replica {
			t.Fatalf("client %d reply names replica %d", client, rep.Replica)
		}
	}
}

// TestCloseDrainsQueuedReplies checks Close's contract: every reply
// submitted before Close is sent, none are dropped mid-queue.
func TestCloseDrainsQueuedReplies(t *testing.T) {
	const n = 5000
	sk := newSink()
	st := NewStage(0, crypto.NewKeyStore(0, crypto.NewKeyFromSeed("t")), sk, 2, nil)
	for i := 0; i < n; i++ {
		st.Submit(crypto.ClientIDBase+uint32(i%16), uint64(i/16+1), []byte("x"))
	}
	st.Close() // must block until all n are sent
	if got := sk.count(); got != n {
		t.Fatalf("drained %d of %d queued replies", got, n)
	}
}

// TestSubmitAfterCloseIsDiscarded checks that a straggling Submit after
// shutdown (e.g. a stale exec event) neither panics nor deadlocks.
func TestSubmitAfterCloseIsDiscarded(t *testing.T) {
	sk := newSink()
	st := NewStage(0, crypto.NewKeyStore(0, crypto.NewKeyFromSeed("t")), sk, 2, nil)
	st.Close()
	st.Submit(crypto.ClientIDBase, 1, []byte("late"))
	if got := sk.count(); got != 0 {
		t.Fatalf("reply sent after Close: %d", got)
	}
}

// blockingSink blocks the first Send until released, so a test can
// hold a worker mid-batch deterministically.
type blockingSink struct {
	sink
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (s *blockingSink) Send(to uint32, m message.Message) error {
	s.once.Do(func() {
		close(s.entered)
		<-s.release
	})
	return s.sink.Send(to, m)
}

// TestSubmitInlineNeverOvertakes pins the inline fast path's safety
// argument: when an earlier reply for the client is still in a
// worker's hands, SubmitInline must queue behind it, not send.
func TestSubmitInlineNeverOvertakes(t *testing.T) {
	bs := &blockingSink{
		sink:    sink{got: make(map[uint32][]*message.Reply)},
		release: make(chan struct{}),
		entered: make(chan struct{}),
	}
	st := NewStage(0, crypto.NewKeyStore(0, crypto.NewKeyFromSeed("t")), bs, 1, nil)
	const client = crypto.ClientIDBase

	st.Submit(client, 1, []byte("first"))
	<-bs.entered // worker is mid-send of seq 1; shard queue is empty but busy

	// Inline submit while seq 1 is in flight: must fall back to the
	// queue — an inline send here would put seq 2 on the wire first.
	st.SubmitInline(client, 2, []byte("second"))
	close(bs.release)
	st.Close()

	reps := bs.got[client]
	if len(reps) != 2 || reps[0].Seq != 1 || reps[1].Seq != 2 {
		got := make([]uint64, len(reps))
		for i, r := range reps {
			got[i] = r.Seq
		}
		t.Fatalf("reply order %v, want [1 2]", got)
	}
}

// TestSubmitInlineQuietShard pins the fast path itself: on a quiet
// shard the reply is sent synchronously, before SubmitInline returns.
func TestSubmitInlineQuietShard(t *testing.T) {
	sk := newSink()
	st := NewStage(0, crypto.NewKeyStore(0, crypto.NewKeyFromSeed("t")), sk, 2, nil)
	defer st.Close()
	st.SubmitInline(crypto.ClientIDBase, 1, []byte("r"))
	if got := sk.count(); got != 1 {
		t.Fatalf("inline submit on quiet shard sent %d replies synchronously, want 1", got)
	}
}
