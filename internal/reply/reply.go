// Package reply implements the parallel reply stage shared by every
// protocol engine. Reply authentication is embarrassingly parallel:
// each reply is MAC'd under the pairwise key of one replica-client
// pair and no client observes ordering across other clients. Keeping
// it on the execution loop therefore serializes work that needs no
// serialization — with B requests per batch the exec loop pays B MAC
// computations and B sends before it may deliver the next instance.
//
// The stage shards replies across a bounded pool of workers by client
// ID. A client's replies always land in the same shard mailbox and
// each shard is drained by exactly one worker, so the per-client reply
// order the reply cache depends on is preserved while distinct clients
// proceed independently.
package reply

import (
	"runtime"
	"sync"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// Sender is the slice of transport.Endpoint the stage needs.
type Sender interface {
	Send(to uint32, m message.Message) error
}

// Job is one reply to authenticate and send.
type Job struct {
	Client uint32
	Seq    uint64
	Result []byte
}

// Stage is the parallel reply stage of one replica.
type Stage struct {
	replica uint32
	ks      *crypto.KeyStore
	ep      Sender
	shards  []*mailbox
	wg      sync.WaitGroup

	sent *telemetry.Counter
}

// mailbox is a minimal MPSC queue; package cop's Mailbox is generic
// over interface events, this one is monomorphic over Job batches to
// keep the hot path free of per-reply boxing.
type mailbox struct {
	mu     sync.Mutex
	cond   sync.Cond
	buf    []Job
	closed bool
	// busy counts batches taken but not yet fully sent (worker) plus
	// active inline sends. SubmitInline may only bypass the queue when
	// the shard is empty AND busy == 0 — otherwise an earlier reply
	// for the same client could still be in flight and the inline send
	// would overtake it.
	busy int
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond.L = &m.mu
	return m
}

func (m *mailbox) put(j Job) {
	m.mu.Lock()
	if !m.closed {
		m.buf = append(m.buf, j)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// take swaps the queued jobs against spare, blocking until work
// arrives or the mailbox closes empty.
func (m *mailbox) take(spare []Job) ([]Job, bool) {
	m.mu.Lock()
	for len(m.buf) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.buf) == 0 {
		m.mu.Unlock()
		return nil, false
	}
	out := m.buf
	m.buf = spare[:0]
	m.busy++
	m.mu.Unlock()
	return out, true
}

// done marks a taken batch (or inline send) fully sent.
func (m *mailbox) done() {
	m.mu.Lock()
	m.busy--
	m.mu.Unlock()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// NewStage starts a reply stage with the given worker count (<= 0
// picks a default scaled to the host). The stage owns the workers
// until Close.
func NewStage(replica uint32, ks *crypto.KeyStore, ep Sender, workers int, tel *telemetry.Telemetry) *Stage {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 2 {
			workers = 2
		}
		if workers > 4 {
			workers = 4
		}
	}
	s := &Stage{replica: replica, ks: ks, ep: ep, shards: make([]*mailbox, workers)}
	if tel != nil {
		s.sent = tel.Counter("hybster_reply_sent_total", "replies authenticated and sent by the reply stage")
		tel.GaugeFunc("hybster_reply_queue_depth", "replies queued across reply-stage shards",
			func() float64 {
				d := 0
				for _, sh := range s.shards {
					d += sh.depth()
				}
				return float64(d)
			})
	}
	for i := range s.shards {
		s.shards[i] = newMailbox()
		s.wg.Add(1)
		go s.run(s.shards[i])
	}
	return s
}

// Submit hands one executed reply to the stage. Calls for the same
// client land in the same shard, so a single client's replies are sent
// in submission order; distinct clients may interleave arbitrarily.
func (s *Stage) Submit(client uint32, seq uint64, result []byte) {
	s.shards[int(client)%len(s.shards)].put(Job{Client: client, Seq: seq, Result: result})
}

// SubmitInline authenticates and sends the reply on the caller's
// goroutine when the client's shard is provably quiet (queue empty,
// nothing in flight), falling back to Submit otherwise. The exec loop
// uses it for single-reply instances: an unbatched request's reply
// latency would otherwise be dominated by the worker wakeup, while
// the FIFO argument still holds — a quiet shard has no earlier reply
// the inline send could overtake, and any later reply for the same
// client is submitted by this same goroutine after it returns.
func (s *Stage) SubmitInline(client uint32, seq uint64, result []byte) {
	sh := s.shards[int(client)%len(s.shards)]
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	if sh.busy > 0 || len(sh.buf) > 0 {
		sh.buf = append(sh.buf, Job{Client: client, Seq: seq, Result: result})
		sh.cond.Signal()
		sh.mu.Unlock()
		return
	}
	sh.busy++
	sh.mu.Unlock()
	s.send(Job{Client: client, Seq: seq, Result: result})
	sh.done()
	s.sent.Add(1)
}

// Close stops the stage after draining every queued reply.
func (s *Stage) Close() {
	for _, sh := range s.shards {
		sh.close()
	}
	s.wg.Wait()
}

func (s *Stage) run(mb *mailbox) {
	defer s.wg.Done()
	var spare []Job
	for {
		jobs, ok := mb.take(spare)
		if !ok {
			return
		}
		for _, j := range jobs {
			s.send(j)
		}
		mb.done()
		s.sent.Add(uint64(len(jobs)))
		spare = jobs
	}
}

func (s *Stage) send(j Job) {
	rep := &message.Reply{Replica: s.replica, Client: j.Client, Seq: j.Seq, Result: j.Result}
	d := rep.Digest()
	rep.MAC = s.ks.KeyFor(j.Client).Sum(d[:])
	_ = s.ep.Send(j.Client, rep)
}
