// Package timeline implements the flattened number space of Hybster
// (§5.2.1 of the paper): a consensus instance is identified by the pair
// (view v, order number o), flattened into a single 64-bit value [v|o]
// with the view stored in the most significant bits. Because trusted
// counters only move forward, flattening guarantees that every message of
// a higher view is bound to a higher counter value than any message of a
// lower view, independent of the order numbers involved — the property
// the view-change protocol builds on.
package timeline

import "fmt"

// ViewBits is the number of most-significant bits holding the view.
const ViewBits = 16

// OrderBits is the number of least-significant bits holding the order
// number.
const OrderBits = 64 - ViewBits

// MaxView is the largest representable view number.
const MaxView = View(1<<ViewBits - 1)

// MaxOrder is the largest representable order number.
const MaxOrder = Order(1<<OrderBits - 1)

// View numbers the configurations the replica group undergoes; the
// leader of view v is replica v mod n.
type View uint64

// Order is the sequence number a request batch is agreed on.
type Order uint64

// Point is a flattened [v|o] value, directly usable as a trusted counter
// value.
type Point uint64

// Pack flattens (v, o) into a Point. It panics if either component
// exceeds its field width; protocol code validates inputs beforehand and
// a violation indicates a programming error.
func Pack(v View, o Order) Point {
	if v > MaxView {
		panic(fmt.Sprintf("timeline: view %d exceeds %d bits", v, ViewBits))
	}
	if o > MaxOrder {
		panic(fmt.Sprintf("timeline: order %d exceeds %d bits", o, OrderBits))
	}
	return Point(uint64(v)<<OrderBits | uint64(o))
}

// ViewStart returns the first point of view v, [v|0]. A replica entering
// view v sets its ordering counter to this value.
func ViewStart(v View) Point { return Pack(v, 0) }

// View extracts the view component of p.
func (p Point) View() View { return View(uint64(p) >> OrderBits) }

// Order extracts the order-number component of p.
func (p Point) Order() Order { return Order(uint64(p) & uint64(MaxOrder)) }

// Unpack splits p into its (view, order) components.
func (p Point) Unpack() (View, Order) { return p.View(), p.Order() }

// Next returns the point directly after p within the same view.
func (p Point) Next() Point { return p + 1 }

// String formats p as "v|o" for logs and traces.
func (p Point) String() string {
	return fmt.Sprintf("%d|%d", p.View(), p.Order())
}
