package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundtrip(t *testing.T) {
	err := quick.Check(func(v uint16, o uint64) bool {
		view := View(v)
		order := Order(o & uint64(MaxOrder))
		p := Pack(view, order)
		gv, go_ := p.Unpack()
		return gv == view && go_ == order
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHigherViewAlwaysHigherPoint(t *testing.T) {
	// The core property: any point of view v+1 exceeds any point of
	// view v, regardless of the order numbers involved.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := View(rng.Intn(int(MaxView)))
		oLow := Order(rng.Uint64() & uint64(MaxOrder))
		oHigh := Order(rng.Uint64() & uint64(MaxOrder))
		if Pack(v+1, oLow) <= Pack(v, oHigh) {
			t.Fatalf("Pack(%d,%d) <= Pack(%d,%d)", v+1, oLow, v, oHigh)
		}
	}
}

func TestOrderMonotoneWithinView(t *testing.T) {
	err := quick.Check(func(v uint16, o uint64) bool {
		order := Order(o & (uint64(MaxOrder) - 1))
		return Pack(View(v), order+1) == Pack(View(v), order)+1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestViewStart(t *testing.T) {
	for _, v := range []View{0, 1, 7, MaxView} {
		p := ViewStart(v)
		if p.View() != v || p.Order() != 0 {
			t.Fatalf("ViewStart(%d) = %v", v, p)
		}
	}
	if ViewStart(3) <= Pack(2, MaxOrder) {
		t.Fatal("view start does not dominate previous view")
	}
}

func TestNext(t *testing.T) {
	p := Pack(2, 10)
	if p.Next() != Pack(2, 11) {
		t.Fatalf("Next() = %v", p.Next())
	}
}

func TestPackPanicsOnOverflow(t *testing.T) {
	assertPanics(t, func() { Pack(MaxView+1, 0) })
	assertPanics(t, func() { Pack(0, MaxOrder+1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestString(t *testing.T) {
	if got := Pack(3, 42).String(); got != "3|42" {
		t.Fatalf("String() = %q", got)
	}
}
